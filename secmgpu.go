// Package secmgpu is a simulation library for secure multi-GPU computing
// with dynamic and batched security-metadata management. It reproduces the
// system of Na, Kim, Lee and Huh, "Supporting Secure Multi-GPU Computing
// with Dynamic and Batched Metadata Management" (HPCA 2024):
//
//   - a discrete-event model of a unified-memory multi-GPU machine (CPU +
//     N GPUs, PCIe + NVLink-class fabric, HBM, page migration and direct
//     cacheline-granularity block access);
//   - counter-mode authenticated encryption of all inter-processor traffic
//     with pre-generated one-time pads, under the Private / Shared / Cached
//     buffer-management baselines;
//   - the paper's contributions: EWMA-driven dynamic OTP buffer
//     re-partitioning and security-metadata batching with lazy integrity
//     verification;
//   - the 17 evaluated workloads of Table IV as synthetic communication
//     models, and one experiment runner per table and figure.
//
// # Quick start
//
//	cfg := secmgpu.DefaultConfig(4)
//	cfg.Secure = true
//	cfg.Scheme = secmgpu.SchemeDynamic
//	cfg.Batching = true
//	cfg.Scale = 0.1
//
//	spec, _ := secmgpu.WorkloadByAbbr("mm")
//	res, err := secmgpu.Run(cfg, spec, secmgpu.RunOptions{})
//
// See the examples/ directory for complete programs and cmd/secbench for
// regenerating every table and figure.
package secmgpu

import (
	"context"
	"fmt"

	"secmgpu/internal/config"
	"secmgpu/internal/experiments"
	"secmgpu/internal/machine"
	"secmgpu/internal/otp"
	"secmgpu/internal/workload"
)

// Config describes one simulated system (Table III parameters, scheme
// selection, workload scale).
type Config = config.Config

// Scheme selects the OTP buffer management policy.
type Scheme = config.OTPScheme

// The OTP buffer management policies of Section II-C and IV-B.
const (
	SchemePrivate = config.OTPPrivate
	SchemeShared  = config.OTPShared
	SchemeCached  = config.OTPCached
	SchemeDynamic = config.OTPDynamic
	// SchemeOracle is an unimplementable always-ready-pad upper bound for
	// ablation studies.
	SchemeOracle = config.OTPOracle
)

// FaultProfile models a lossy fabric: seeded per-link drop, corruption, and
// duplication of protected messages, recovered by the secure channel's
// NACK/retransmission protocol (Config.Recovery).
type FaultProfile = config.FaultProfile

// RunOptions selects run-time features (functional crypto, communication
// tracing).
type RunOptions = machine.RunOptions

// Result is the outcome of one simulation: execution time, traffic
// accounting, OTP statistics, batching statistics.
type Result = machine.Result

// WorkloadSpec parameterizes one benchmark's communication model.
type WorkloadSpec = workload.Spec

// OTPStats aggregates pad-use outcomes (hit / partially hidden / miss).
type OTPStats = otp.Stats

// Directions for OTPStats queries.
const (
	Send = otp.Send
	Recv = otp.Recv
)

// Outcomes for OTPStats queries.
const (
	OTPHit     = otp.Hit
	OTPPartial = otp.Partial
	OTPMiss    = otp.Miss
)

// DefaultConfig returns the paper's Table III configuration for the given
// GPU count, with security disabled (the normalization baseline).
func DefaultConfig(numGPUs int) Config { return config.Default(numGPUs) }

// Workloads returns the 17 evaluated benchmarks of Table IV.
func Workloads() []WorkloadSpec { return workload.Registry() }

// WorkloadByAbbr looks a workload up by its Table IV abbreviation
// ("mm", "syr2k", ...).
func WorkloadByAbbr(abbr string) (WorkloadSpec, error) { return workload.ByAbbr(abbr) }

// Run simulates one workload on one system configuration and returns the
// result. The run is deterministic in (cfg, spec, opt).
func Run(cfg Config, spec WorkloadSpec, opt RunOptions) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sys, err := machine.New(cfg, workload.Traces(spec, cfg.NumGPUs, cfg.Scale, cfg.Seed), opt)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}

// Slowdown runs spec under both cfg and its unsecure baseline and returns
// the normalized execution time (1.0 = no overhead), the metric of the
// paper's Figures 8, 9, 21, 24, 25 and 26.
func Slowdown(cfg Config, spec WorkloadSpec, opt RunOptions) (float64, error) {
	base := cfg
	base.Secure = false
	ub, err := Run(base, spec, opt)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	sec, err := Run(cfg, spec, opt)
	if err != nil {
		return 0, err
	}
	return float64(sec.Cycles) / float64(ub.Cycles), nil
}

// ExperimentParams sizes a table/figure reproduction.
type ExperimentParams = experiments.Params

// ExperimentTable is a reproduced table or figure.
type ExperimentTable = experiments.Table

// Experiments returns the available experiment names (tables and figures
// of the paper plus the repository's ablations), sorted. The list is a
// view of the experiments registry, the same source of truth behind
// RunExperimentContext and cmd/secbench.
func Experiments() []string { return experiments.Names() }

// RunExperiment reproduces one table or figure by name without
// cancellation support; see RunExperimentContext.
func RunExperiment(name string, p ExperimentParams) (*ExperimentTable, error) {
	return RunExperimentContext(context.Background(), name, p)
}

// RunExperimentContext reproduces one table or figure by name. Cancelling
// ctx stops the underlying sweep between simulations and returns ctx's
// error. Identical (workload, config, options) cells are simulated once
// per process and served from the sweep engine's cache afterwards; supply
// p.Engine to isolate or observe a run.
func RunExperimentContext(ctx context.Context, name string, p ExperimentParams) (*ExperimentTable, error) {
	runner, ok := experiments.Registry()[name]
	if !ok {
		return nil, fmt.Errorf("secmgpu: unknown experiment %q (known: %v)", name, experiments.Names())
	}
	return runner(ctx, p)
}

// DefaultExperimentParams returns 4-GPU parameters at the given workload
// scale (1.0 reproduces the full evaluation size).
func DefaultExperimentParams(scale float64) ExperimentParams {
	return experiments.DefaultParams(scale)
}
