package secmgpu

// The benchmark suite regenerates every table and figure of the paper's
// evaluation (see DESIGN.md section 5 for the index). Each benchmark runs
// the corresponding experiment and reports the headline values as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Workload sizing is controlled by the
// SECMGPU_SCALE environment variable (default 0.10; the full evaluation
// size is 1.0).

import (
	"os"
	"strconv"
	"testing"

	"secmgpu/internal/sweep"
)

func benchScale() float64 {
	if v := os.Getenv("SECMGPU_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.10
}

func benchParams() ExperimentParams {
	return DefaultExperimentParams(benchScale())
}

// reportColumns attaches each column's mean-row value as a benchmark
// metric, named after the experiment column itself (normalized for
// benchstat: lowercase, with runs of non-alphanumerics collapsed to "_")
// so the -bench output reads as the paper's tables do.
func reportColumns(b *testing.B, t *ExperimentTable) {
	b.Helper()
	mean := t.MeanRow()
	for i, col := range t.Columns {
		b.ReportMetric(mean.Values[i], metricName(col)+"_avg")
	}
}

// metricName normalizes an experiment column label into a benchstat-safe
// metric unit.
func metricName(col string) string {
	out := make([]byte, 0, len(col))
	pendingSep := false
	for i := 0; i < len(col); i++ {
		c := col[i]
		switch {
		case c >= 'A' && c <= 'Z':
			c += 'a' - 'A'
			fallthrough
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			if pendingSep && len(out) > 0 {
				out = append(out, '_')
			}
			pendingSep = false
			out = append(out, c)
		default:
			pendingSep = true
		}
	}
	if len(out) == 0 {
		return "col"
	}
	return string(out)
}

func runExperimentBench(b *testing.B, name string, p ExperimentParams) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration keeps the benchmark measuring
		// simulation, not the sweep engine's result cache.
		p.Engine = sweep.New(0)
		t, err := RunExperiment(name, p)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == b.N-1 {
			reportColumns(b, t)
		}
	}
}

// BenchmarkTable1_OTPStorage regenerates Table I (analytic OTP storage).
func BenchmarkTable1_OTPStorage(b *testing.B) {
	runExperimentBench(b, "table1", benchParams())
}

// BenchmarkTable4_RPKIClasses regenerates Table IV's workload registry
// with the modelled request densities.
func BenchmarkTable4_RPKIClasses(b *testing.B) {
	runExperimentBench(b, "table4", benchParams())
}

// BenchmarkFig8_PrivateOTPSweep regenerates Figure 8: Private slowdown as
// the OTP allocation grows 1x -> 16x.
func BenchmarkFig8_PrivateOTPSweep(b *testing.B) {
	runExperimentBench(b, "fig8", benchParams())
}

// BenchmarkFig9_PriorSchemes regenerates Figure 9: Private / Shared /
// Cached at OTP 4x.
func BenchmarkFig9_PriorSchemes(b *testing.B) {
	runExperimentBench(b, "fig9", benchParams())
}

// BenchmarkFig10_OTPLatencyDist regenerates Figure 10: the OTP
// hit/partial/miss distribution of the prior schemes.
func BenchmarkFig10_OTPLatencyDist(b *testing.B) {
	runExperimentBench(b, "fig10", benchParams())
}

// BenchmarkFig11_OverheadBreakdown regenerates Figure 11: secure
// communication latency alone, then with metadata bandwidth.
func BenchmarkFig11_OverheadBreakdown(b *testing.B) {
	runExperimentBench(b, "fig11", benchParams())
}

// BenchmarkFig12_TrafficBreakdown regenerates Figure 12: traffic of the
// secure system relative to the unsecure baseline.
func BenchmarkFig12_TrafficBreakdown(b *testing.B) {
	runExperimentBench(b, "fig12", benchParams())
}

// BenchmarkFig13_SendRecvPhases regenerates Figure 13: the send/receive
// mix over matrix multiplication's execution.
func BenchmarkFig13_SendRecvPhases(b *testing.B) {
	runExperimentBench(b, "fig13", benchParams())
}

// BenchmarkFig14_DestinationPhases regenerates Figure 14: GPU 1's request
// destinations over time.
func BenchmarkFig14_DestinationPhases(b *testing.B) {
	runExperimentBench(b, "fig14", benchParams())
}

// BenchmarkFig15_Burstiness16 regenerates Figure 15: cycles until 16 data
// blocks gather per processor pair.
func BenchmarkFig15_Burstiness16(b *testing.B) {
	runExperimentBench(b, "fig15", benchParams())
}

// BenchmarkFig16_Burstiness32 regenerates Figure 16: cycles until 32 data
// blocks gather per processor pair.
func BenchmarkFig16_Burstiness32(b *testing.B) {
	runExperimentBench(b, "fig16", benchParams())
}

// BenchmarkFig21_MainResult4GPU regenerates Figure 21, the headline 4-GPU
// comparison of Private 4x/16x, Cached, Dynamic, and Dynamic+Batching.
func BenchmarkFig21_MainResult4GPU(b *testing.B) {
	runExperimentBench(b, "fig21", benchParams())
}

// BenchmarkFig22_OTPDistOurs regenerates Figure 22: the OTP distribution
// including the proposed scheme.
func BenchmarkFig22_OTPDistOurs(b *testing.B) {
	runExperimentBench(b, "fig22", benchParams())
}

// BenchmarkFig23_TrafficOurs regenerates Figure 23: communication traffic
// of Private, Cached, and Ours.
func BenchmarkFig23_TrafficOurs(b *testing.B) {
	runExperimentBench(b, "fig23", benchParams())
}

// BenchmarkFig24_8GPU regenerates Figure 24: the 8-GPU comparison.
func BenchmarkFig24_8GPU(b *testing.B) {
	runExperimentBench(b, "fig24", benchParams())
}

// BenchmarkFig25_16GPU regenerates Figure 25: the 16-GPU comparison.
func BenchmarkFig25_16GPU(b *testing.B) {
	p := benchParams()
	// 16 GPUs at the default scale is the heaviest experiment; halve the
	// per-GPU ops so the suite stays tractable on a laptop.
	p.Scale = p.Scale / 2
	runExperimentBench(b, "fig25", p)
}

// BenchmarkFig26_AESLatency regenerates Figure 26: sensitivity to the
// AES-GCM latency (10-40 cycles).
func BenchmarkFig26_AESLatency(b *testing.B) {
	runExperimentBench(b, "fig26", benchParams())
}

// BenchmarkAblationAlphaBeta sweeps the EWMA forgetting rates of the
// Dynamic allocator (beyond the paper).
func BenchmarkAblationAlphaBeta(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "pr"}
	runExperimentBench(b, "ablation-alpha-beta", p)
}

// BenchmarkAblationBatchSize sweeps the metadata batch size n.
func BenchmarkAblationBatchSize(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "pr", "aes"}
	runExperimentBench(b, "ablation-batch-size", p)
}

// BenchmarkAblationTimeout sweeps the partial-batch flush timeout.
func BenchmarkAblationTimeout(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "aes"}
	runExperimentBench(b, "ablation-timeout", p)
}

// BenchmarkAblationDecompose isolates Dynamic-only and Batching-only
// contributions.
func BenchmarkAblationDecompose(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "pr", "aes"}
	runExperimentBench(b, "ablation-decompose", p)
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// remote operations per wall-clock second on one secure 4-GPU run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := WorkloadByAbbr("mm")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(4)
	cfg.Scale = benchScale()
	cfg.Secure = true
	cfg.Scheme = SchemeDynamic
	cfg.Batching = true
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, spec, RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
}

// benchThroughput16 measures simulated remote operations per wall-clock
// second on one secure 16-GPU run with the given kernel worker count.
// Workers=1 is the sequential event loop; Workers=8 is the partitioned
// parallel kernel (two GPUs per partition). Both produce bit-identical
// results, so the pair isolates the kernel's scheduling cost.
func benchThroughput16(b *testing.B, workers int) {
	b.Helper()
	spec, err := WorkloadByAbbr("mm")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(16)
	// 16 GPUs is the heaviest topology; halve the per-GPU ops as the
	// Figure 25 benchmark does so the suite stays tractable.
	cfg.Scale = benchScale() / 2
	cfg.Secure = true
	cfg.Scheme = SchemeDynamic
	cfg.Batching = true
	b.ReportAllocs()
	var ops uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, spec, RunOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		ops += res.Ops
	}
	b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkSimulatorThroughput16GPU measures the sequential kernel on the
// 16-GPU switch topology — the baseline the parallel kernel is gated
// against.
func BenchmarkSimulatorThroughput16GPU(b *testing.B) {
	benchThroughput16(b, 1)
}

// BenchmarkSimulatorThroughput16GPUParallel measures the partitioned
// parallel kernel (8 workers) on the same 16-GPU run. On a single-core
// host it degenerates to roughly sequential speed plus barrier overhead;
// the speedup target (>2x) only applies with GOMAXPROCS >= 8.
func BenchmarkSimulatorThroughput16GPUParallel(b *testing.B) {
	benchThroughput16(b, 8)
}

// BenchmarkAblationOracle bounds the schemes against an idealized
// always-ready pad table.
func BenchmarkAblationOracle(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "mt"}
	runExperimentBench(b, "ablation-oracle", p)
}

// BenchmarkAblationTLB enables the TLB/IOMMU hierarchy.
func BenchmarkAblationTLB(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "mt"}
	runExperimentBench(b, "ablation-tlb", p)
}

// BenchmarkAblationTopology compares p2p and switch fabrics.
func BenchmarkAblationTopology(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "mt"}
	runExperimentBench(b, "ablation-topology", p)
}

// BenchmarkAblationCUFrontEnd compares flat and CU-sharded front-ends.
func BenchmarkAblationCUFrontEnd(b *testing.B) {
	p := benchParams()
	p.Workloads = []string{"mm", "syr2k", "mt"}
	runExperimentBench(b, "ablation-cu-frontend", p)
}
