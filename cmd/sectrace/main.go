// Command sectrace generates, exports, and analyzes workload communication
// traces.
//
// Usage:
//
//	sectrace -workload mm -gpu 1 -gpus 4 -scale 0.25 -out mm_gpu1.trace
//	sectrace -analyze mm_gpu1.trace
//	sectrace -workload syr2k -analyze ""     # generate and analyze in one go
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"secmgpu/internal/store"
	"secmgpu/internal/workload"
)

func main() {
	wl := flag.String("workload", "mm", "workload abbreviation")
	gpu := flag.Int("gpu", 1, "requesting GPU (1-based)")
	gpus := flag.Int("gpus", 4, "number of GPUs in the system")
	scale := flag.Float64("scale", 0.25, "workload scale")
	seed := flag.Int64("seed", 1, "workload seed")
	out := flag.String("out", "", "write the binary trace to this file")
	analyze := flag.String("analyze", "", "analyze this trace file instead of generating")
	flag.Parse()

	var ops []workload.Op
	switch {
	case *analyze != "":
		f, err := os.Open(*analyze)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ops, err = workload.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("trace      %s\n", *analyze)
	default:
		spec, err := workload.ByAbbr(*wl)
		if err != nil {
			fatal(err)
		}
		ops = spec.Trace(*gpu, *gpus, *scale, *seed)
		fmt.Printf("trace      %s GPU%d/%d scale %.2f seed %d\n", spec.Abbr, *gpu, *gpus, *scale, *seed)
		if *out != "" {
			// Atomic write: an interrupted dump leaves either no file
			// or the previous complete one, never a truncated trace.
			f, err := store.CreateAtomic(*out)
			if err != nil {
				fatal(err)
			}
			if err := workload.WriteTrace(f, ops); err != nil {
				f.Abort()
				fatal(err)
			}
			if err := f.Commit(); err != nil {
				fatal(err)
			}
			fmt.Printf("written    %s\n", *out)
		}
	}

	st := workload.AnalyzeTrace(ops)
	fmt.Printf("ops        %d (%d reads, %d writes)\n", st.Ops, st.Reads, st.Writes)
	fmt.Printf("bursts     %d (mean length %.1f blocks)\n", st.Bursts, st.MeanBurst)
	if st.Ops > 0 {
		fmt.Printf("density    %.1f ops per kilocycle of compute gap\n",
			float64(st.Ops)/(float64(st.TotalGap)/1000+1))
	}
	fmt.Printf("pages      %d unique\n", st.UniquePage)
	homes := make([]int, 0, len(st.DestShares))
	for h := range st.DestShares {
		homes = append(homes, h)
	}
	sort.Ints(homes)
	fmt.Printf("dest mix   ")
	for _, h := range homes {
		name := fmt.Sprintf("GPU%d", h)
		if h == 0 {
			name = "CPU"
		}
		fmt.Printf("%s %.1f%%  ", name, 100*st.DestShares[h])
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sectrace:", err)
	os.Exit(1)
}
