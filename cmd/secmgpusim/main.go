// Command secmgpusim runs one workload on a simulated secure multi-GPU
// system and prints a detailed report: execution time, slowdown against the
// unsecure baseline, traffic breakdown, OTP latency-hiding distribution,
// batching and migration statistics.
//
// Usage:
//
//	secmgpusim -workload mm -gpus 4 -scheme dynamic -batching -scale 0.25
//	secmgpusim -workload syr2k -scheme private -otp 16
//	secmgpusim -list
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"secmgpu"
	"secmgpu/internal/prof"
	"secmgpu/internal/store"
	"secmgpu/internal/sweep"
)

// stopProfiles flushes any active -cpuprofile/-memprofile before the
// process exits; die and main's return path both route through it.
var stopProfiles = func() {}

// die reports err and exits with the given code, flushing profiles first.
func die(code int, args ...any) {
	fmt.Fprintln(os.Stderr, append([]any{"secmgpusim:"}, args...)...)
	stopProfiles()
	os.Exit(code)
}

func main() {
	wl := flag.String("workload", "mm", "workload abbreviation (see -list)")
	gpus := flag.Int("gpus", 4, "number of GPUs")
	schemeName := flag.String("scheme", "private", "otp scheme: unsecure|private|shared|cached|dynamic")
	batching := flag.Bool("batching", false, "enable security metadata batching")
	otpMult := flag.Int("otp", 4, "OTP multiplier N (the paper's 'OTP Nx')")
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full size)")
	seed := flag.Int64("seed", 1, "workload seed")
	aesLat := flag.Uint64("aes-latency", 40, "AES-GCM latency in cycles")
	functional := flag.Bool("functional", false, "run real encryption and MAC verification")
	dropRate := flag.Float64("drop-rate", 0, "per-link probability of losing a protected message in flight")
	corruptRate := flag.Float64("corrupt-rate", 0, "per-link probability of corrupting a protected message in flight")
	dupRate := flag.Float64("dup-rate", 0, "per-link probability of duplicating a protected message in flight")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault profile's per-link generators")
	storeDir := flag.String("store", "", "durable result store directory: identical runs are served from disk instead of re-simulating")
	list := flag.Bool("list", false, "list workloads and exit")
	simWorkers := flag.Int("sim-workers", 0, "simulation kernel workers: 1 sequential, >1 partitioned parallel, 0 auto (results are bit-identical)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile at exit to this file (go tool pprof)")
	mutexProfile := flag.String("mutexprofile", "", "write a contended-mutex profile at exit to this file (go tool pprof)")
	flag.Parse()

	stop, err := prof.Start(prof.Options{
		CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile,
	})
	if err != nil {
		die(2, err)
	}
	stopProfiles = stop
	defer stopProfiles()

	if *list {
		fmt.Printf("%-8s %-22s %-12s %s\n", "abbr", "name", "suite", "class")
		for _, s := range secmgpu.Workloads() {
			fmt.Printf("%-8s %-22s %-12s %s\n", s.Abbr, s.Name, s.Suite, s.Class)
		}
		return
	}

	spec, err := secmgpu.WorkloadByAbbr(*wl)
	if err != nil {
		die(2, err)
	}

	cfg := secmgpu.DefaultConfig(*gpus)
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.OTPMultiplier = *otpMult
	cfg.AESGCMLatency = *aesLat
	cfg.Batching = *batching
	cfg.Faults = secmgpu.FaultProfile{
		DropRate:      *dropRate,
		CorruptRate:   *corruptRate,
		DuplicateRate: *dupRate,
		Seed:          *faultSeed,
	}
	switch strings.ToLower(*schemeName) {
	case "unsecure":
		cfg.Secure = false
	case "private":
		cfg.Secure, cfg.Scheme = true, secmgpu.SchemePrivate
	case "shared":
		cfg.Secure, cfg.Scheme = true, secmgpu.SchemeShared
	case "cached":
		cfg.Secure, cfg.Scheme = true, secmgpu.SchemeCached
	case "dynamic":
		cfg.Secure, cfg.Scheme = true, secmgpu.SchemeDynamic
	default:
		die(2, fmt.Sprintf("unknown scheme %q", *schemeName))
	}

	opt := secmgpu.RunOptions{Functional: *functional, Workers: *simWorkers}

	// With -store, runs route through a store-backed sweep engine, so a
	// (config, workload) pair already simulated by any run sharing the
	// directory — this tool or a secbench campaign — is served from disk.
	run := secmgpu.Run
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.Options{SimDigest: store.BinaryDigest()})
		if err != nil {
			die(1, err)
		}
		eng := sweep.New(1)
		eng.SetStore(st)
		run = func(cfg secmgpu.Config, spec secmgpu.WorkloadSpec, opt secmgpu.RunOptions) (*secmgpu.Result, error) {
			res, err := eng.Run(context.Background(),
				[]sweep.Cell{{Spec: spec, Cfg: cfg, Opt: opt, Label: spec.Abbr}}, 1)
			if err != nil {
				return nil, err
			}
			return res[0], nil
		}
	}

	base := cfg
	base.Secure = false
	ub, err := run(base, spec, opt)
	if err != nil {
		die(1, "baseline:", err)
	}
	res := ub
	if cfg.Secure {
		res, err = run(cfg, spec, opt)
		if err != nil {
			die(1, err)
		}
	}

	schemeLabel := "Unsecure"
	if cfg.Secure {
		schemeLabel = fmt.Sprintf("%v (OTP %dx)", cfg.Scheme, cfg.OTPMultiplier)
		if cfg.Batching {
			schemeLabel += " + Batching"
		}
	}
	fmt.Printf("workload          %s (%s, %s, %v)\n", spec.Abbr, spec.Name, spec.Suite, spec.Class)
	fmt.Printf("system            %d GPUs + CPU, scheme %s\n", cfg.NumGPUs, schemeLabel)
	fmt.Printf("remote ops        %d\n", res.Ops)
	fmt.Printf("execution time    %d cycles\n", res.Cycles)
	if cfg.Secure {
		fmt.Printf("slowdown          %.3fx vs unsecure (%d cycles)\n",
			float64(res.Cycles)/float64(ub.Cycles), ub.Cycles)
	}
	fmt.Printf("page migrations   %d\n", res.Migrations)

	tr := res.Traffic
	fmt.Printf("traffic           %.2f MB total (%.2f MB data, %.2f MB security metadata, %.2f MB mem-protection)\n",
		mb(tr.TotalBytes()), mb(tr.BaseBytes), mb(tr.MetaBytes), mb(tr.MemProtBytes))
	if !cfg.Secure {
		return
	}
	fmt.Printf("traffic overhead  %.1f%% vs unsecure\n",
		100*(float64(tr.TotalBytes())/float64(ub.Traffic.TotalBytes())-1))

	fmt.Printf("otp send          hit %.1f%%  partial %.1f%%  miss %.1f%%\n",
		100*res.OTP.Fraction(secmgpu.Send, secmgpu.OTPHit),
		100*res.OTP.Fraction(secmgpu.Send, secmgpu.OTPPartial),
		100*res.OTP.Fraction(secmgpu.Send, secmgpu.OTPMiss))
	fmt.Printf("otp recv          hit %.1f%%  partial %.1f%%  miss %.1f%%\n",
		100*res.OTP.Fraction(secmgpu.Recv, secmgpu.OTPHit),
		100*res.OTP.Fraction(secmgpu.Recv, secmgpu.OTPPartial),
		100*res.OTP.Fraction(secmgpu.Recv, secmgpu.OTPMiss))

	fmt.Printf("acks              %d sent (%d data blocks)\n", res.Sec.ACKsSent, res.Sec.DataSent)
	if cfg.Batching {
		fmt.Printf("batching          %d Batched_MsgMACs, %d verified, %d failed, %d timeout flushes\n",
			res.Sec.BatchMACsSent, res.Sec.BatchesVerified, res.Sec.BatchesFailed, res.Sec.TimeoutFlushes)
	}
	if *functional {
		fmt.Printf("crypto            %d blocks verified, %d failures\n",
			res.Sec.DecryptOK, res.Sec.DecryptFailed)
	}
	if cfg.Faults.Active() {
		fmt.Printf("fabric faults     %d dropped, %d corrupted, %d duplicated\n",
			tr.FaultDropped, tr.FaultCorrupted, tr.FaultDuplicated)
		fmt.Printf("recovery          %d retransmits, %d ack timeouts, %d NACKs sent, %d quarantined\n",
			res.Sec.Retransmits, res.Sec.AckTimeouts, res.Sec.NACKsSent, res.Sec.Quarantined)
		fmt.Printf("poisoned          %d batches, %d blocks, %d failed ops\n",
			res.Sec.BatchesPoisoned, res.Sec.BlocksPoisoned, res.FailedOps)
	}
}

func mb(b uint64) float64 { return float64(b) / (1 << 20) }
