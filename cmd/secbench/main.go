// Command secbench regenerates the paper's tables and figures on the
// simulated secure multi-GPU system.
//
// All experiments run through the shared sweep engine, so identical
// (workload, config) cells are simulated once per invocation even when
// several figures need them — `secbench -exp all` re-uses the Unsecure
// baseline across nearly every figure and reports the deduplication in a
// final sweep summary. SIGINT cancels the run gracefully: in-flight
// simulations finish, no new cells start, and completed tables remain
// printed.
//
// With -store the run is also crash-safe: every completed cell persists
// to an on-disk content-addressed store as it finishes, a per-run
// journal records progress, and a run killed mid-campaign resumes with
// -resume RUNID — replaying the journal, reusing every verified
// persisted result, and simulating only what is missing. Results from a
// different binary or config are invalidated (quarantined), never
// silently reused.
//
// Usage:
//
//	secbench -exp fig21 -scale 0.25
//	secbench -exp all -scale 1.0 -csv
//	secbench -exp all -store results/store -run-id nightly -out results/tables
//	secbench -exp all -store results/store -resume nightly -out results/tables
//	secbench -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"secmgpu/internal/experiments"
	"secmgpu/internal/prof"
	"secmgpu/internal/store"
	"secmgpu/internal/sweep"
)

// stopProfiles flushes any active -cpuprofile/-memprofile before the
// process exits; fatal and the explicit os.Exit paths all route through it.
var stopProfiles = func() {}

// reporter is the live stderr progress view of the sweep engine: one
// rewritten status line per completed cell, cleared before tables print.
type reporter struct {
	name  string
	dirty bool
}

func (r *reporter) observe(ev sweep.Event) {
	if ev.Err != nil {
		r.clear()
		fmt.Fprintf(os.Stderr, "secbench: %s: cell %s failed: %v\n", r.name, ev.Label, ev.Err)
	}
	fmt.Fprintf(os.Stderr, "\r\033[K  %s: %d/%d cells · %d cached · %d failed · last %s %.2fs",
		r.name, ev.Done, ev.Total, ev.CachedCells, ev.FailedCells, ev.Label, ev.Duration.Seconds())
	r.dirty = true
}

// clear erases the in-place status line so regular output starts clean.
func (r *reporter) clear() {
	if r.dirty {
		fmt.Fprint(os.Stderr, "\r\033[K")
		r.dirty = false
	}
}

func main() {
	exp := flag.String("exp", "fig21", "experiment to run (or 'all', or a comma-separated list)")
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = full size)")
	gpus := flag.Int("gpus", 4, "number of GPUs")
	seed := flag.Int64("seed", 1, "workload seed")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	quiet := flag.Bool("quiet", false, "disable the live progress line")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-simulation wall-time bound (0 = unbounded); an exceeded cell fails instead of hanging the sweep")
	storeDir := flag.String("store", "", "durable result store directory: completed cells persist as they finish and later runs reuse them")
	resume := flag.String("resume", "", "resume the journaled run with this ID from the store (requires -store)")
	runID := flag.String("run-id", "", "run identifier for the journal (default: derived from the start time)")
	outDir := flag.String("out", "", "also write each experiment's table to this directory (atomic writes, one stable filename per experiment)")
	retries := flag.Int("retries", 0, "extra attempts for a failed cell before it is marked failed in the journal")
	retryBackoff := flag.Duration("retry-backoff", 2*time.Second, "base wait between cell retry attempts (doubles each retry)")
	heapMB := flag.Uint64("heap-watermark-mb", 0, "soft heap watermark in MiB: above it, results already persisted to the store are shed from memory (0 = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	flag.Parse()

	stop, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stopProfiles()

	reg := experiments.Registry()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engine := sweep.New(*par)
	engine.SetCellTimeout(*cellTimeout)
	engine.SetRetry(*retries, *retryBackoff)
	engine.SetHeapWatermark(*heapMB << 20)
	rep := &reporter{}
	if !*quiet {
		engine.Observe(rep.observe)
	}

	p := experiments.Params{GPUs: *gpus, Scale: *scale, Seed: *seed, Parallelism: *par, Engine: engine}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	var names []string
	if *exp == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		if _, ok := reg[name]; !ok {
			fmt.Fprintf(os.Stderr, "secbench: unknown experiment %q (use -list)\n", name)
			stopProfiles()
			os.Exit(2)
		}
	}

	st, journal := openDurability(*storeDir, *resume, *runID, names, p)
	engine.SetStore(st)
	engine.SetJournal(journal)
	defer journal.Close()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	failed := 0
	interrupted := false
	for _, name := range names {
		fn := reg[name]
		rep.name = name
		expStart := time.Now()
		table, err := fn(ctx, p)
		rep.clear()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			// A failed experiment does not abort the rest of the run;
			// the sweep engine already isolated the broken cell.
			fmt.Fprintf(os.Stderr, "secbench: %s: %v\n", name, err)
			failed++
			continue
		}
		rendered := table.String()
		if *csv {
			rendered = table.CSV()
		}
		fmt.Print(rendered)
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(expStart).Seconds())
		if *outDir != "" {
			ext := ".txt"
			if *csv {
				ext = ".csv"
			}
			path := filepath.Join(*outDir, name+ext)
			if err := store.WriteFileAtomic(path, []byte(rendered)); err != nil {
				fmt.Fprintf(os.Stderr, "secbench: write %s: %v\n", path, err)
				failed++
			}
		}
	}

	es := engine.Stats()
	fmt.Fprintf(os.Stderr,
		"sweep summary: %d cells requested, %d simulated, %d deduplicated (cache hits), %d failed; %.1fs simulation time in %.1fs wall\n",
		es.Cells, es.Simulated, es.CacheHits, es.Failed,
		es.SimTime.Seconds(), time.Since(start).Seconds())
	if st != nil {
		ss := st.Stats()
		fmt.Fprintf(os.Stderr,
			"store summary: %d restored from store, %d persisted, %d quarantined, %d retries, %d shed; journal %s\n",
			es.StoreHits, ss.Puts, ss.Quarantined, es.Retries, es.Shed, journal.Path())
	}
	if err := journal.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "secbench: journal writes failed (results are still persisted): %v\n", err)
	}
	switch {
	case interrupted:
		fmt.Fprintln(os.Stderr, "secbench: interrupted; tables printed above are complete, the rest were skipped")
		if journal != nil {
			fmt.Fprintf(os.Stderr, "secbench: resume with -store %s -resume %s\n", *storeDir, journalRunID(journal))
		}
		stopProfiles()
		os.Exit(130)
	case failed > 0:
		stopProfiles()
		os.Exit(1)
	}
}

// openDurability wires up the optional store and journal: a fresh run
// creates a new journal, -resume replays and verifies an existing one.
// Both return nil when -store is unset.
func openDurability(storeDir, resume, runID string, names []string, p experiments.Params) (*store.Store, *store.Journal) {
	if storeDir == "" {
		if resume != "" {
			fatal(errors.New("-resume requires -store"))
		}
		return nil, nil
	}
	simDigest := store.BinaryDigest()
	st, err := store.Open(storeDir, store.Options{SimDigest: simDigest})
	if err != nil {
		fatal(err)
	}
	info := store.RunInfo{
		ID:        runID,
		SimDigest: simDigest,
		Exps:      names,
		GPUs:      p.GPUs,
		Scale:     p.Scale,
		Seed:      p.Seed,
		Workloads: p.Workloads,
	}

	if resume != "" {
		info.ID = resume
		path := st.JournalPath(resume)
		rep, err := store.ReplayJournal(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.Info.Verify(info); err != nil {
			fatal(err)
		}
		if rep.Info.SimDigest != simDigest {
			fmt.Fprintln(os.Stderr, "secbench: warning: binary changed since this run started; persisted results will be invalidated and re-simulated")
		}
		journal, err := store.OpenJournalAppend(path, info)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr,
			"secbench: resuming run %s (attempt %d): %d cells already persisted, %d failed, %d corrupt journal records tolerated\n",
			resume, rep.Resumes+1, len(rep.Done), len(rep.Failed), rep.Corrupt)
		return st, journal
	}

	if info.ID == "" {
		info.ID = "r" + time.Now().UTC().Format("20060102-150405")
	}
	journal, err := store.CreateJournal(st.JournalPath(info.ID), info)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "secbench: journaling run %s to %s\n", info.ID, journal.Path())
	return st, journal
}

// journalRunID recovers the run ID from the journal path for the resume
// hint printed on interruption.
func journalRunID(j *store.Journal) string {
	base := filepath.Base(j.Path())
	return strings.TrimSuffix(base, filepath.Ext(base))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secbench:", err)
	stopProfiles()
	os.Exit(2)
}
