// Command secbench regenerates the paper's tables and figures on the
// simulated secure multi-GPU system.
//
// Usage:
//
//	secbench -exp fig21 -scale 0.25
//	secbench -exp all -scale 1.0 -csv
//	secbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"secmgpu/internal/experiments"
)

type runner func(experiments.Params) (*experiments.Table, error)

func registry() map[string]runner {
	return map[string]runner{
		"table1": func(experiments.Params) (*experiments.Table, error) { return experiments.Table1(), nil },
		"table4": func(experiments.Params) (*experiments.Table, error) { return experiments.Table4(), nil },
		"fig8":   experiments.Fig8,
		"fig9":   experiments.Fig9,
		"fig10":  experiments.Fig10,
		"fig11":  experiments.Fig11,
		"fig12":  experiments.Fig12,
		"fig13":  experiments.Fig13,
		"fig14":  experiments.Fig14,
		"fig15":  experiments.Fig15,
		"fig16":  experiments.Fig16,
		"fig21":  experiments.Fig21,
		"fig22":  experiments.Fig22,
		"fig23":  experiments.Fig23,
		"fig24":  experiments.Fig24,
		"fig25":  experiments.Fig25,
		"fig26":  experiments.Fig26,

		"ablation-alpha-beta":  experiments.AblationAlphaBeta,
		"ablation-batch-size":  experiments.AblationBatchSize,
		"ablation-timeout":     experiments.AblationBatchTimeout,
		"ablation-decompose":   experiments.AblationDecomposition,
		"ablation-oracle":      experiments.AblationOracle,
		"ablation-tlb":         experiments.AblationTLB,
		"ablation-topology":    experiments.AblationTopology,
		"ablation-cu-frontend": experiments.AblationCUFrontEnd,
	}
}

func main() {
	exp := flag.String("exp", "fig21", "experiment to run (or 'all')")
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = full size)")
	gpus := flag.Int("gpus", 4, "number of GPUs")
	seed := flag.Int64("seed", 1, "workload seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	flag.Parse()

	reg := registry()
	if *list {
		names := make([]string, 0, len(reg))
		for n := range reg {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	p := experiments.Params{GPUs: *gpus, Scale: *scale, Seed: *seed}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	var names []string
	if *exp == "all" {
		for n := range reg {
			names = append(names, n)
		}
		sort.Strings(names)
	} else {
		names = strings.Split(*exp, ",")
	}

	for _, name := range names {
		fn, ok := reg[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "secbench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		table, err := fn(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "secbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}
