// Command secbench regenerates the paper's tables and figures on the
// simulated secure multi-GPU system.
//
// All experiments run through the shared sweep engine, so identical
// (workload, config) cells are simulated once per invocation even when
// several figures need them — `secbench -exp all` re-uses the Unsecure
// baseline across nearly every figure and reports the deduplication in a
// final sweep summary. SIGINT cancels the run gracefully: in-flight
// simulations finish, no new cells start, and completed tables remain
// printed.
//
// With -store the run is also crash-safe: every completed cell persists
// to an on-disk content-addressed store as it finishes, a per-run
// journal records progress, and a run killed mid-campaign resumes with
// -resume RUNID — replaying the journal, reusing every verified
// persisted result, and simulating only what is missing. Results from a
// different binary or config are invalidated (quarantined), never
// silently reused.
//
// secbench also runs as a distributed campaign service: -serve starts a
// coordinator exposing campaigns over a versioned HTTP+JSON API backed
// by a lease-based work queue of sweep-cell digests, -worker starts a
// worker process that leases cells, executes them, and publishes results
// into the shared content-addressed store, and -submit sends a campaign
// to a coordinator, waits, and fetches the finished tables. Because
// results are digest-keyed, a SIGKILL'd worker is just an expired lease:
// its cells re-lease to a surviving worker and the final tables are
// byte-identical to a single-process run.
//
// Usage:
//
//	secbench -exp fig21 -scale 0.25
//	secbench -exp all -scale 1.0 -csv
//	secbench -exp all -store results/store -run-id nightly -out results/tables
//	secbench -exp all -store results/store -resume nightly -out results/tables
//	secbench -serve :8123 -store results/store -auth-token $TOKEN
//	secbench -serve :8123 -store results/store -tls-cert cert.pem -tls-key key.pem
//	secbench -worker -coordinator http://coord:8123 -store results/store -auth-token $TOKEN
//	secbench -submit -coordinator http://coord:8123 -exp fig21 -out tables -auth-token $TOKEN
//	secbench -serve :8123 -store results/store -verify-fraction 0.1 -scrub-interval 10m
//	secbench -serve :8123 -store results/store -max-campaigns 8 -max-queue-depth 10000 -brownout-mb 2048
//	secbench -submit -coordinator http://coord:8123 -exp all -priority low -deadline 2h -out tables
//	secbench -fsck -store results/store
//	secbench -list
//
// The coordinator itself is crash-tolerant when -store is set: campaign
// submissions and lifecycle transitions are journaled to
// <store>/coordinator.jsonl, and a restarted coordinator replays the
// journal, re-submits campaigns that were running, and rehydrates their
// persisted cells — workers reconnect and the campaign converges to the
// same bytes. SECBENCH_FAULTS (or -faults) injects seeded RPC faults
// into -worker/-submit traffic for chaos testing.
//
// Under load the coordinator degrades gracefully rather than falling
// over: -max-campaigns and -max-queue-depth shed excess submissions with
// 429 + Retry-After (which -submit honors, retrying until admitted),
// -brownout-mb pauses verification sampling and scrubbing above a heap
// watermark, -priority feeds a weighted-fair lease scheduler so big
// sweeps cannot starve interactive submissions, and -deadline bounds a
// campaign's wall time (past it: failed, partial tables returned, workers
// cancel in-flight cells). -submit streams each table as it finishes.
// SIGINT kills the coordinator abruptly (crash semantics, journal
// recovery); SIGTERM drains it gracefully and journals a clean shutdown.
//
// Workers are not trusted blindly: every publish attests the canonical
// digest of its payload under a per-lease fencing token, -verify-fraction
// sends a deterministic sample of cells to an independent quorum
// (-verify-quorum) of workers and quarantines whoever diverges, and
// -scrub-interval makes the coordinator periodically re-verify every
// object at rest. `secbench -fsck -store DIR` runs that same scrub once,
// offline, and exits non-zero if corruption was found. SECBENCH_BYZANTINE
// (or -byzantine) turns a worker actively malicious — corrupt payloads,
// lying attestations, zombie publishes — for chaos-testing the defenses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"secmgpu/internal/campaign"
	"secmgpu/internal/experiments"
	"secmgpu/internal/prof"
	"secmgpu/internal/store"
	"secmgpu/internal/sweep"
)

// stopProfiles flushes any active -cpuprofile/-memprofile before the
// process exits; fatal and the explicit os.Exit paths all route through it.
var stopProfiles = func() {}

// reporter is the live stderr progress view of the sweep engine: one
// rewritten status line per completed cell, cleared before tables print.
type reporter struct {
	name  string
	dirty bool
}

func (r *reporter) observe(ev sweep.Event) {
	if ev.Err != nil {
		r.clear()
		fmt.Fprintf(os.Stderr, "secbench: %s: cell %s failed: %v\n", r.name, ev.Label, ev.Err)
	}
	fmt.Fprintf(os.Stderr, "\r\033[K  %s: %d/%d cells · %d cached · %d failed · last %s %.2fs",
		r.name, ev.Done, ev.Total, ev.CachedCells, ev.FailedCells, ev.Label, ev.Duration.Seconds())
	r.dirty = true
}

// clear erases the in-place status line so regular output starts clean.
func (r *reporter) clear() {
	if r.dirty {
		fmt.Fprint(os.Stderr, "\r\033[K")
		r.dirty = false
	}
}

func main() {
	exp := flag.String("exp", "fig21", "experiment to run (or 'all', or a comma-separated list)")
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = full size)")
	gpus := flag.Int("gpus", 4, "number of GPUs")
	seed := flag.Int64("seed", 1, "workload seed")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	simWorkers := flag.Int("sim-workers", envInt("SECBENCH_SIM_WORKERS", 0), "simulation kernel worker partitions per cell: 1 = sequential event loop, >1 = partitioned parallel kernel, 0 = auto from topology size and free CPUs (default $SECBENCH_SIM_WORKERS); results are bit-identical for every value")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	quiet := flag.Bool("quiet", false, "disable the live progress line")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-simulation wall-time bound (0 = unbounded); an exceeded cell fails instead of hanging the sweep")
	storeDir := flag.String("store", "", "durable result store directory: completed cells persist as they finish and later runs reuse them")
	resume := flag.String("resume", "", "resume the journaled run with this ID from the store (requires -store)")
	runID := flag.String("run-id", "", "run identifier for the journal (default: derived from the start time)")
	outDir := flag.String("out", "", "also write each experiment's table to this directory (atomic writes, one stable filename per experiment)")
	retries := flag.Int("retries", 0, "extra attempts for a failed cell before it is marked failed in the journal")
	retryBackoff := flag.Duration("retry-backoff", 2*time.Second, "base wait between cell retry attempts (doubles each retry)")
	heapMB := flag.Uint64("heap-watermark-mb", 0, "soft heap watermark in MiB: above it, results already persisted to the store are shed from memory (0 = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile at exit to this file (parallel-kernel window imbalance shows up here)")
	mutexProfile := flag.String("mutexprofile", "", "write a contended-mutex profile at exit to this file")
	serveAddr := flag.String("serve", "", "run a campaign coordinator on this address (e.g. :8123) instead of a local sweep; uses -store and -lease-ttl")
	workerMode := flag.Bool("worker", false, "run as a campaign worker: lease cells from -coordinator, execute, publish results (shares -store)")
	submitMode := flag.Bool("submit", false, "submit the experiment set to -coordinator as a campaign, wait, and fetch tables")
	coordinator := flag.String("coordinator", "", "coordinator base URL for -worker and -submit (e.g. http://127.0.0.1:8123)")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "how long a worker may hold a leased cell without renewing before it requeues (-serve)")
	maxCampaigns := flag.Int("max-campaigns", 0, "admission limit: reject new submissions with 429 + Retry-After while this many campaigns are running (-serve; 0 = unlimited)")
	maxQueueDepth := flag.Int("max-queue-depth", 0, "admission limit: reject new submissions while this many cells are pending on the work queue (-serve; 0 = unlimited)")
	brownoutMB := flag.Int("brownout-mb", 0, "heap watermark in MiB: above it the coordinator browns out — verification sampling and scrub passes pause until the heap recedes (-serve; 0 = off)")
	drainTimeout := flag.Duration("drain-timeout", 0, "how long a SIGTERM drain waits for in-flight leases before giving up (-serve; 0 = 2×lease TTL + 5s)")
	poll := flag.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts when the queue is empty (-worker) and between status polls (-submit)")
	workerName := flag.String("worker-name", "", "worker identity in lease records (default hostname-pid)")
	authToken := flag.String("auth-token", os.Getenv("SECBENCH_AUTH_TOKEN"), "shared bearer token: required by -serve on every endpoint except /v1/healthz, sent by -worker and -submit (default $SECBENCH_AUTH_TOKEN)")
	tlsCert := flag.String("tls-cert", "", "TLS certificate file for -serve (with -tls-key, the coordinator terminates TLS)")
	tlsKey := flag.String("tls-key", "", "TLS private key file for -serve")
	faults := flag.String("faults", os.Getenv("SECBENCH_FAULTS"), "seeded RPC fault injection for -worker and -submit traffic, e.g. \"seed=7,refuse=0.05,timeout=0.02,err=0.05,torn=0.03,dup=0.05\" (default $SECBENCH_FAULTS; chaos testing only)")
	verifyFraction := flag.Float64("verify-fraction", 0, "fraction of cells the coordinator re-executes on an independent worker quorum to catch Byzantine results (-serve; 0 disables, 1 verifies everything)")
	verifyQuorum := flag.Int("verify-quorum", 2, "independent executions a verified cell needs before its result is admitted (-serve; minimum 2)")
	scrubInterval := flag.Duration("scrub-interval", 0, "how often the coordinator re-verifies every stored object at rest and heals corruption (-serve; 0 disables)")
	byzantine := flag.String("byzantine", os.Getenv("SECBENCH_BYZANTINE"), "seeded worker misbehavior, e.g. \"seed=3,corrupt=0.5,lie=0.2,zombie=0.1\" (-worker; default $SECBENCH_BYZANTINE; chaos testing only)")
	priority := flag.String("priority", "", "campaign priority for weighted-fair scheduling: low, normal, or high (-submit; default normal)")
	deadline := flag.Duration("deadline", 0, "campaign wall-time budget from submission (-submit; 0 = unbounded): past it the campaign fails and returns the tables finished so far")
	fsck := flag.Bool("fsck", false, "verify every object in -store once (the coordinator's scrub pass, offline), quarantine corruption, and exit non-zero if any was found")
	flag.Parse()

	stop, err := prof.Start(prof.Options{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile})
	if err != nil {
		fatal(err)
	}
	stopProfiles = stop
	defer stopProfiles()

	reg := experiments.Registry()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	if *fsck {
		runFsck(*storeDir)
		return
	}
	if *serveAddr != "" {
		// The coordinator manages its own signals: SIGINT cancels hard
		// (crash semantics — campaigns recover from the journal), SIGTERM
		// drains gracefully (no new leases, in-flight work finishes, a
		// clean-shutdown record lands in the journal).
		runServe(*serveAddr, *storeDir, *leaseTTL, *drainTimeout, *maxCampaigns, *maxQueueDepth, *brownoutMB,
			*authToken, *tlsCert, *tlsKey, *verifyFraction, *verifyQuorum, *scrubInterval, *quiet)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch {
	case *workerMode:
		runWorker(ctx, *coordinator, *storeDir, *workerName, *poll, *authToken, *faults, *byzantine, *quiet)
		return
	case *submitMode:
		spec := campaignSpec(*exp, *workloads, *gpus, *scale, *seed, *par, *simWorkers, *retries, *cellTimeout, *priority, *deadline)
		runSubmit(ctx, *coordinator, spec, *outDir, *csv, *poll, *authToken, *faults, *quiet)
		return
	}

	engine := sweep.New(*par)
	engine.SetCellTimeout(*cellTimeout)
	engine.SetRetry(*retries, *retryBackoff)
	engine.SetHeapWatermark(*heapMB << 20)
	rep := &reporter{}
	if !*quiet {
		engine.Observe(rep.observe)
	}

	p := experiments.Params{GPUs: *gpus, Scale: *scale, Seed: *seed, Parallelism: *par, SimWorkers: *simWorkers, Engine: engine}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	var names []string
	if *exp == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		if _, ok := reg[name]; !ok {
			fmt.Fprintf(os.Stderr, "secbench: unknown experiment %q (use -list)\n", name)
			stopProfiles()
			os.Exit(2)
		}
	}

	st, journal := openDurability(*storeDir, *resume, *runID, names, p)
	engine.SetStore(st)
	engine.SetJournal(journal)
	defer journal.Close()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	failed := 0
	interrupted := false
	for _, name := range names {
		fn := reg[name]
		rep.name = name
		expStart := time.Now()
		table, err := fn(ctx, p)
		rep.clear()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			// A failed experiment does not abort the rest of the run;
			// the sweep engine already isolated the broken cell.
			fmt.Fprintf(os.Stderr, "secbench: %s: %v\n", name, err)
			failed++
			continue
		}
		rendered := table.String()
		if *csv {
			rendered = table.CSV()
		}
		fmt.Print(rendered)
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(expStart).Seconds())
		if *outDir != "" {
			if err := writeRendered(*outDir, name, *csv, rendered); err != nil {
				fmt.Fprintf(os.Stderr, "secbench: %v\n", err)
				failed++
			}
		}
	}

	es := engine.Stats()
	fmt.Fprintf(os.Stderr,
		"sweep summary: %d cells requested, %d simulated, %d deduplicated (cache hits), %d failed; %.1fs simulation time in %.1fs wall\n",
		es.Cells, es.Simulated, es.CacheHits, es.Failed,
		es.SimTime.Seconds(), time.Since(start).Seconds())
	if st != nil {
		ss := st.Stats()
		fmt.Fprintf(os.Stderr,
			"store summary: %d restored from store, %d persisted, %d quarantined, %d retries, %d shed; journal %s\n",
			es.StoreHits, ss.Puts, ss.Quarantined, es.Retries, es.Shed, journal.Path())
	}
	if err := journal.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "secbench: journal writes failed (results are still persisted): %v\n", err)
	}
	switch {
	case interrupted:
		fmt.Fprintln(os.Stderr, "secbench: interrupted; tables printed above are complete, the rest were skipped")
		if journal != nil {
			fmt.Fprintf(os.Stderr, "secbench: resume with -store %s -resume %s\n", *storeDir, journalRunID(journal))
		}
		stopProfiles()
		os.Exit(130)
	case failed > 0:
		stopProfiles()
		os.Exit(1)
	}
}

// openDurability wires up the optional store and journal: a fresh run
// creates a new journal, -resume replays and verifies an existing one.
// Both return nil when -store is unset.
func openDurability(storeDir, resume, runID string, names []string, p experiments.Params) (*store.Store, *store.Journal) {
	if storeDir == "" {
		if resume != "" {
			fatal(errors.New("-resume requires -store"))
		}
		return nil, nil
	}
	simDigest := store.BinaryDigest()
	st, err := store.Open(storeDir, store.Options{SimDigest: simDigest})
	if err != nil {
		fatal(err)
	}
	info := store.RunInfo{
		ID:         runID,
		SimDigest:  simDigest,
		Exps:       names,
		GPUs:       p.GPUs,
		Scale:      p.Scale,
		Seed:       p.Seed,
		Workloads:  p.Workloads,
		SimWorkers: p.SimWorkers,
	}

	if resume != "" {
		info.ID = resume
		path := st.JournalPath(resume)
		rep, err := store.ReplayJournal(path)
		if err != nil {
			fatal(err)
		}
		if err := rep.Info.Verify(info); err != nil {
			fatal(err)
		}
		if rep.Info.SimDigest != simDigest {
			fmt.Fprintln(os.Stderr, "secbench: warning: binary changed since this run started; persisted results will be invalidated and re-simulated")
		}
		journal, err := store.OpenJournalAppend(path, info)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr,
			"secbench: resuming run %s (attempt %d): %d cells already persisted, %d failed, %d corrupt journal records tolerated\n",
			resume, rep.Resumes+1, len(rep.Done), len(rep.Failed), rep.Corrupt)
		return st, journal
	}

	if info.ID == "" {
		info.ID = "r" + time.Now().UTC().Format("20060102-150405")
	}
	journal, err := store.CreateJournal(st.JournalPath(info.ID), info)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "secbench: journaling run %s to %s\n", info.ID, journal.Path())
	return st, journal
}

// journalRunID recovers the run ID from the journal path for the resume
// hint printed on interruption.
func journalRunID(j *store.Journal) string {
	base := filepath.Base(j.Path())
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// writeRendered writes one experiment's rendered table under its stable
// filename (atomic write). The single-process and -submit paths share it,
// which is what makes their output directories byte-comparable.
func writeRendered(outDir, name string, csv bool, rendered string) error {
	ext := ".txt"
	if csv {
		ext = ".csv"
	}
	path := filepath.Join(outDir, name+ext)
	if err := store.WriteFileAtomic(path, []byte(rendered)); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

// campaignSpec maps the sweep flags onto the shared campaign options
// struct — the same surface the library and the coordinator use.
func campaignSpec(exp, workloads string, gpus int, scale float64, seed int64, par, simWorkers, retries int, cellTimeout time.Duration, priority string, deadline time.Duration) campaign.Spec {
	spec := campaign.Spec{
		GPUs:        gpus,
		Scale:       scale,
		Seed:        seed,
		Parallelism: par,
		SimWorkers:  simWorkers,
		Retries:     retries,
		CellTimeout: cellTimeout,
		Priority:    campaign.Priority(priority),
		Deadline:    deadline,
	}
	if exp != "" && exp != "all" {
		spec.Experiments = strings.Split(exp, ",")
	}
	if workloads != "" {
		spec.Workloads = strings.Split(workloads, ",")
	}
	return spec
}

// runFsck opens the store, runs one scrub pass over every object, prints
// the report, and exits non-zero when corruption was quarantined — the
// offline twin of the coordinator's -scrub-interval loop.
func runFsck(storeDir string) {
	if storeDir == "" {
		fatal(errors.New("-fsck requires -store"))
	}
	st, err := store.Open(storeDir, store.Options{SimDigest: store.BinaryDigest()})
	if err != nil {
		fatal(err)
	}
	rep, err := st.Scrub()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fsck %s: %d objects scanned, %d healthy, %d stale (other simulator binary, left in place), %d quarantined\n",
		storeDir, rep.Scanned, rep.Healthy, rep.Stale, rep.Quarantined)
	for _, bad := range rep.Bad {
		fmt.Printf("  quarantined %s: %s\n", bad.Digest, bad.Reason)
	}
	if rep.Quarantined > 0 {
		fmt.Fprintln(os.Stderr, "secbench: fsck found corruption; quarantined objects re-simulate on next use")
		stopProfiles()
		os.Exit(1)
	}
}

// runServe hosts a campaign coordinator. SIGINT cancels the serve
// context — crash semantics, campaigns recover from the journal on the
// next boot. SIGTERM instead triggers a graceful drain: lease granting
// and submissions stop (503 + Retry-After), in-flight leases finish or
// expire, a clean-shutdown record is journaled, and the process exits 0.
func runServe(addr, storeDir string, leaseTTL, drainTimeout time.Duration, maxCampaigns, maxQueueDepth, brownoutMB int, authToken, tlsCert, tlsKey string, verifyFraction float64, verifyQuorum int, scrubInterval time.Duration, quiet bool) {
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "secbench: "+format+"\n", args...)
	}
	if quiet {
		logf = nil
	} else {
		logf("serving campaigns on %s (store %q, lease TTL %s, auth %v, tls %v, verify %.2f×%d, scrub %s, max campaigns %d, max queue %d, brownout %d MiB)",
			addr, storeDir, leaseTTL, authToken != "", tlsCert != "",
			verifyFraction, verifyQuorum, scrubInterval, maxCampaigns, maxQueueDepth, brownoutMB)
	}
	if (tlsCert == "") != (tlsKey == "") {
		fatal(errors.New("-tls-cert and -tls-key must be set together"))
	}
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir, store.Options{SimDigest: store.BinaryDigest()})
		if err != nil {
			fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	drain := make(chan struct{})
	sigterm := make(chan os.Signal, 1)
	signal.Notify(sigterm, syscall.SIGTERM)
	go func() {
		select {
		case <-sigterm:
			if logf != nil {
				logf("SIGTERM: draining — refusing new work, waiting for in-flight leases")
			}
			close(drain)
		case <-ctx.Done():
		}
	}()

	err := campaign.Serve(ctx, addr, campaign.Options{
		Store: st, LeaseTTL: leaseTTL, Logf: logf,
		AuthToken: authToken, TLSCertFile: tlsCert, TLSKeyFile: tlsKey,
		VerifyFraction: verifyFraction, VerifyQuorum: verifyQuorum,
		ScrubInterval: scrubInterval,
		MaxCampaigns:  maxCampaigns, MaxQueueDepth: maxQueueDepth, BrownoutMB: brownoutMB,
		Drain: drain, DrainTimeout: drainTimeout,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fatal(err)
	}
}

// newCampaignClient builds the coordinator client shared by -worker and
// -submit: bearer token attached, and — for chaos testing — the seeded
// fault-injecting transport wrapped around the real one.
func newCampaignClient(coordinator, authToken, faults string, logf func(string, ...any)) *campaign.Client {
	httpClient := &http.Client{Timeout: 60 * time.Second}
	if faults != "" {
		spec, err := campaign.ParseFaultSpec(faults)
		if err != nil {
			fatal(err)
		}
		if spec.Enabled() {
			httpClient.Transport = campaign.NewFaultTransport(spec, nil)
			if logf != nil {
				logf("fault injection enabled: %s", faults)
			}
		}
	}
	cl := campaign.NewClient(coordinator, httpClient)
	cl.SetToken(authToken)
	return cl
}

// runWorker leases and executes cells until interrupted. A quarantined
// worker exits non-zero instead of retrying: the coordinator has stopped
// trusting this identity, so polling on would only burn its CPU.
func runWorker(ctx context.Context, coordinator, storeDir, name string, poll time.Duration, authToken, faults, byzantine string, quiet bool) {
	if coordinator == "" {
		fatal(errors.New("-worker requires -coordinator URL"))
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "secbench: "+format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	var byzSpec campaign.ByzantineSpec
	if byzantine != "" {
		var err error
		byzSpec, err = campaign.ParseByzantineSpec(byzantine)
		if err != nil {
			fatal(err)
		}
		if byzSpec.Enabled() && logf != nil {
			logf("BYZANTINE worker: misbehaving per %q (chaos testing only)", byzantine)
		}
	}
	var st *store.Store
	if storeDir != "" {
		var err error
		st, err = store.Open(storeDir, store.Options{SimDigest: store.BinaryDigest()})
		if err != nil {
			fatal(err)
		}
	}
	w := campaign.NewWorker(newCampaignClient(coordinator, authToken, faults, logf), campaign.WorkerOptions{
		Name: name, Store: st, Poll: poll, Byzantine: byzSpec, Logf: logf,
	})
	err := w.Run(ctx)
	ws := w.Stats()
	fmt.Fprintf(os.Stderr, "secbench: worker %s done: %d leased, %d completed, %d failed, %d rejected, %d renewals lost, %d lease errors\n",
		w.Name(), ws.Leased, ws.Completed, ws.Failed, ws.Rejected, ws.RenewLost, ws.LeaseErrors)
	if bs := w.ByzantineStats(); bs.Cells > 0 {
		fmt.Fprintf(os.Stderr, "secbench: byzantine stats: %d cells drawn, %d corrupted, %d lied, %d zombies\n",
			bs.Cells, bs.Corrupted, bs.Lied, bs.Zombies)
	}
	if errors.Is(err, campaign.ErrWorkerQuarantined) {
		fmt.Fprintln(os.Stderr, "secbench: worker quarantined by the coordinator; not retrying")
		stopProfiles()
		os.Exit(3)
	}
}

// runSubmit sends a campaign to the coordinator, streams each table as
// the coordinator finishes it, and writes them under the same stable
// filenames a single-process run uses. A 429/503 from an overloaded or
// draining coordinator is not fatal: the submission retries on the
// server's own Retry-After hint until admitted or interrupted.
func runSubmit(ctx context.Context, coordinator string, spec campaign.Spec, outDir string, csv bool, poll time.Duration, authToken, faults string, quiet bool) {
	if coordinator == "" {
		fatal(errors.New("-submit requires -coordinator URL"))
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "secbench: "+format+"\n", args...)
	}
	if quiet {
		logf = nil
	}
	client := newCampaignClient(coordinator, authToken, faults, logf)
	var st campaign.Status
	for {
		var err error
		st, err = client.Submit(ctx, spec)
		if err == nil {
			break
		}
		var apiErr *campaign.APIError
		if errors.As(err, &apiErr) &&
			(apiErr.Status == http.StatusTooManyRequests || apiErr.Status == http.StatusServiceUnavailable) {
			wait := apiErr.RetryAfter
			if wait <= 0 {
				wait = time.Second
			}
			if logf != nil {
				logf("coordinator shed the submission (%d: %s); retrying in %s", apiErr.Status, apiErr.Message, wait)
			}
			select {
			case <-ctx.Done():
				fatal(ctx.Err())
			case <-time.After(wait):
			}
			continue
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "secbench: submitted campaign %s (%d experiments)\n", st.ID, st.ExperimentsTotal)

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	progress := func(s campaign.Status) {
		fmt.Fprintf(os.Stderr, "\r\033[K  campaign %s: %s · %d/%d experiments · %d cells delegated · %d completed · %d failed",
			s.ID, s.State, s.ExperimentsDone, s.ExperimentsTotal,
			s.Cells.Delegated, s.Cells.Completed, s.Cells.Failed)
	}
	if quiet {
		progress = nil
	}
	// Tables stream as the coordinator finishes them: each prints (and
	// persists) exactly once, long before the campaign's slowest
	// experiment lands. A finished table never changes, so the streamed
	// bytes equal what a terminal-state fetch would return.
	writeFailed := 0
	streamed := make(map[string]bool)
	emit := func(t campaign.TableResult) {
		rendered := t.Text
		if csv {
			rendered = t.CSV
		}
		if !quiet {
			fmt.Fprint(os.Stderr, "\r\033[K")
		}
		fmt.Print(rendered)
		fmt.Println()
		streamed[t.Name] = true
		if outDir != "" {
			if err := writeRendered(outDir, t.Name, csv, rendered); err != nil {
				fmt.Fprintf(os.Stderr, "secbench: %v\n", err)
				writeFailed++
			}
		}
	}
	final, err := client.WaitTables(ctx, st.ID, poll, progress, emit)
	if !quiet {
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
	if err != nil {
		if ctx.Err() != nil {
			// Interrupted: leave the campaign running server-side; a later
			// -submit of the identical spec reuses every persisted cell.
			fmt.Fprintf(os.Stderr, "secbench: interrupted; campaign %s continues on the coordinator\n", st.ID)
			stopProfiles()
			os.Exit(130)
		}
		fatal(err)
	}

	// Authoritative flush: WaitTables' streaming is best-effort, so fetch
	// the terminal snapshot and emit anything that slipped through. For a
	// deadline-expired (failed) campaign this is the partial-tables
	// answer: whatever finished before the budget ran out.
	snap, err := client.PartialTables(ctx, st.ID)
	if err != nil {
		fatal(err)
	}
	for _, t := range snap.Tables {
		if !streamed[t.Name] {
			emit(t)
		}
	}
	fmt.Fprintf(os.Stderr, "secbench: campaign %s %s: %d/%d experiments, %d cells delegated, %d completed, %d failed, %d cache hits, %d store hits\n",
		final.ID, final.State, final.ExperimentsDone, final.ExperimentsTotal,
		final.Cells.Delegated, final.Cells.Completed, final.Cells.Failed,
		final.Cells.CacheHits, final.Cells.StoreHits)
	for name, msg := range final.ExperimentErrors {
		fmt.Fprintf(os.Stderr, "secbench: %s failed: %s\n", name, msg)
	}
	if final.State != campaign.StateDone || writeFailed > 0 {
		stopProfiles()
		os.Exit(1)
	}
}

// envInt reads an integer environment default for a flag; unset or
// malformed values fall back to def.
func envInt(name string, def int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "secbench: ignoring %s=%q: %v\n", name, v, err)
		return def
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "secbench:", err)
	stopProfiles()
	os.Exit(2)
}
