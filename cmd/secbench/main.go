// Command secbench regenerates the paper's tables and figures on the
// simulated secure multi-GPU system.
//
// All experiments run through the shared sweep engine, so identical
// (workload, config) cells are simulated once per invocation even when
// several figures need them — `secbench -exp all` re-uses the Unsecure
// baseline across nearly every figure and reports the deduplication in a
// final sweep summary. SIGINT cancels the run gracefully: in-flight
// simulations finish, no new cells start, and completed tables remain
// printed.
//
// Usage:
//
//	secbench -exp fig21 -scale 0.25
//	secbench -exp all -scale 1.0 -csv
//	secbench -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"secmgpu/internal/experiments"
	"secmgpu/internal/sweep"
)

// reporter is the live stderr progress view of the sweep engine: one
// rewritten status line per completed cell, cleared before tables print.
type reporter struct {
	name  string
	dirty bool
}

func (r *reporter) observe(ev sweep.Event) {
	if ev.Err != nil {
		r.clear()
		fmt.Fprintf(os.Stderr, "secbench: %s: cell %s failed: %v\n", r.name, ev.Label, ev.Err)
	}
	fmt.Fprintf(os.Stderr, "\r\033[K  %s: %d/%d cells · %d cached · %d failed · last %s %.2fs",
		r.name, ev.Done, ev.Total, ev.CachedCells, ev.FailedCells, ev.Label, ev.Duration.Seconds())
	r.dirty = true
}

// clear erases the in-place status line so regular output starts clean.
func (r *reporter) clear() {
	if r.dirty {
		fmt.Fprint(os.Stderr, "\r\033[K")
		r.dirty = false
	}
}

func main() {
	exp := flag.String("exp", "fig21", "experiment to run (or 'all', or a comma-separated list)")
	scale := flag.Float64("scale", 0.25, "workload scale factor (1.0 = full size)")
	gpus := flag.Int("gpus", 4, "number of GPUs")
	seed := flag.Int64("seed", 1, "workload seed")
	par := flag.Int("par", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	list := flag.Bool("list", false, "list experiments and exit")
	quiet := flag.Bool("quiet", false, "disable the live progress line")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default all)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-simulation wall-time bound (0 = unbounded); an exceeded cell fails instead of hanging the sweep")
	flag.Parse()

	reg := experiments.Registry()
	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	engine := sweep.New(*par)
	engine.SetCellTimeout(*cellTimeout)
	rep := &reporter{}
	if !*quiet {
		engine.Observe(rep.observe)
	}

	p := experiments.Params{GPUs: *gpus, Scale: *scale, Seed: *seed, Parallelism: *par, Engine: engine}
	if *workloads != "" {
		p.Workloads = strings.Split(*workloads, ",")
	}

	var names []string
	if *exp == "all" {
		names = experiments.Names()
	} else {
		names = strings.Split(*exp, ",")
	}

	start := time.Now()
	failed := 0
	interrupted := false
	for _, name := range names {
		fn, ok := reg[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "secbench: unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		rep.name = name
		expStart := time.Now()
		table, err := fn(ctx, p)
		rep.clear()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				interrupted = true
				break
			}
			// A failed experiment does not abort the rest of the run;
			// the sweep engine already isolated the broken cell.
			fmt.Fprintf(os.Stderr, "secbench: %s: %v\n", name, err)
			failed++
			continue
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Print(table.String())
		}
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(expStart).Seconds())
	}

	st := engine.Stats()
	fmt.Fprintf(os.Stderr,
		"sweep summary: %d cells requested, %d simulated, %d deduplicated (cache hits), %d failed; %.1fs simulation time in %.1fs wall\n",
		st.Cells, st.Simulated, st.CacheHits, st.Failed,
		st.SimTime.Seconds(), time.Since(start).Seconds())
	switch {
	case interrupted:
		fmt.Fprintln(os.Stderr, "secbench: interrupted; tables printed above are complete, the rest were skipped")
		os.Exit(130)
	case failed > 0:
		os.Exit(1)
	}
}
