package secmgpu

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"

	"secmgpu/internal/experiments"
	"secmgpu/internal/sweep"
)

func smallConfig(gpus int) Config {
	cfg := DefaultConfig(gpus)
	cfg.Scale = 0.02
	return cfg
}

func TestRunUnsecureAndSecure(t *testing.T) {
	spec, err := WorkloadByAbbr("mm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(4)
	base, err := Run(cfg, spec, RunOptions{})
	if err != nil {
		t.Fatalf("unsecure run: %v", err)
	}
	if base.Cycles == 0 || base.Ops == 0 {
		t.Fatal("empty result")
	}

	cfg.Secure = true
	cfg.Scheme = SchemeDynamic
	cfg.Batching = true
	sec, err := Run(cfg, spec, RunOptions{Functional: true})
	if err != nil {
		t.Fatalf("secure run: %v", err)
	}
	if sec.Ops != base.Ops {
		t.Errorf("ops differ: %d vs %d", sec.Ops, base.Ops)
	}
	if sec.Sec.DecryptFailed != 0 || sec.Sec.BatchesFailed != 0 {
		t.Errorf("functional failures: decrypt=%d batches=%d",
			sec.Sec.DecryptFailed, sec.Sec.BatchesFailed)
	}
	if sec.OTP.Uses(Send) == 0 || sec.OTP.Uses(Recv) == 0 {
		t.Error("no OTP activity recorded")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	spec, _ := WorkloadByAbbr("mm")
	cfg := smallConfig(4)
	cfg.NumGPUs = 0
	if _, err := Run(cfg, spec, RunOptions{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSlowdownOrdering(t *testing.T) {
	spec, err := WorkloadByAbbr("syr2k")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(4)
	cfg.Scale = 0.15
	cfg.Secure = true

	cfg.Scheme = SchemePrivate
	private, err := Slowdown(cfg, spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = SchemeShared
	shared, err := Slowdown(cfg, spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = SchemeDynamic
	cfg.Batching = true
	ours, err := Slowdown(cfg, spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if private < 1.0 {
		t.Errorf("Private slowdown %.3f < 1; securing cannot speed up syr2k", private)
	}
	if shared <= private {
		t.Errorf("Shared %.3f <= Private %.3f; paper ordering violated", shared, private)
	}
	if ours >= private {
		t.Errorf("Ours %.3f >= Private %.3f; the contributions should win", ours, private)
	}
}

func TestWorkloadsRegistry(t *testing.T) {
	if got := len(Workloads()); got != 17 {
		t.Errorf("workloads=%d, want 17", got)
	}
	if _, err := WorkloadByAbbr("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	names := Experiments()
	if len(names) < 20 {
		t.Fatalf("only %d experiments registered", len(names))
	}
	p := DefaultExperimentParams(0.02)
	p.Workloads = []string{"mm"}

	// Analytic tables run instantly.
	tab, err := RunExperiment("table1", p)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Value("4", "1x KB"); !ok || v < 2.7 || v > 2.8 {
		t.Errorf("Table I 4-GPU 1x storage=%v, want ~2.75 KB", v)
	}

	// One simulated figure end to end.
	fig, err := RunExperiment("fig21", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 1 || fig.Rows[0].Label != "mm" {
		t.Fatalf("fig21 rows=%v", fig.Rows)
	}
	if !strings.Contains(fig.String(), "Figure 21") {
		t.Error("table render missing ID")
	}
	if _, err := RunExperiment("nope", p); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestExperimentNamesAgreeAcrossViews pins the single-source-of-truth
// property: the public name list, the public runner lookup, and the
// secbench registry (all views of experiments.Registry) expose exactly the
// same experiments.
func TestExperimentNamesAgreeAcrossViews(t *testing.T) {
	lib := Experiments()
	if !sort.StringsAreSorted(lib) {
		t.Errorf("Experiments() not sorted: %v", lib)
	}
	reg := experiments.Registry()
	if len(lib) != len(reg) {
		t.Fatalf("Experiments() has %d names, registry has %d", len(lib), len(reg))
	}
	p := DefaultExperimentParams(0.02)
	p.Workloads = []string{"mm"}
	// A pre-cancelled context exercises every name's lookup without
	// paying for the simulations: resolution failure would report
	// "unknown experiment" rather than the context error.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range lib {
		if _, ok := reg[name]; !ok {
			t.Errorf("experiment %q advertised but not in registry", name)
		}
		if _, err := RunExperimentContext(cancelled, name, p); err != nil && strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("RunExperimentContext does not resolve advertised experiment %q", name)
		}
	}
}

func TestRunExperimentContextCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	p := DefaultExperimentParams(0.02)
	p.Workloads = []string{"mm"}
	p.Engine = sweep.New(1)
	if _, err := RunExperimentContext(cancelled, "fig21", p); !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if st := p.Engine.Stats(); st.Simulated != 0 {
		t.Errorf("cancelled experiment simulated %d cells", st.Simulated)
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := RunExperimentContext(context.Background(), "fig99", ExperimentParams{}); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown experiment: err = %v, want errors.Is ErrUnknownExperiment", err)
	}
	if _, err := WorkloadByAbbr("nope"); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown workload: err = %v, want errors.Is ErrUnknownWorkload", err)
	}
	// The sentinels are distinct.
	if errors.Is(ErrUnknownExperiment, ErrUnknownWorkload) || errors.Is(ErrUnknownWorkload, ErrParamsMismatch) {
		t.Error("sentinel errors are not distinct")
	}
}

func TestRunContextCancellation(t *testing.T) {
	spec, err := WorkloadByAbbr("mm")
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(cancelled, smallConfig(4), spec, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if _, err := SlowdownContext(cancelled, smallConfig(4), spec, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SlowdownContext err = %v, want context.Canceled", err)
	}
}

func TestRunContextMatchesRun(t *testing.T) {
	spec, err := WorkloadByAbbr("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(2)
	cfg.Secure = true
	plain, err := Run(cfg, spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunContext(context.Background(), cfg, spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Cycles != ctxed.Cycles || plain.Ops != ctxed.Ops {
		t.Fatalf("Run and RunContext disagree: cycles %d vs %d", plain.Cycles, ctxed.Cycles)
	}
}
